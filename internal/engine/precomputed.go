// The precomputed-replay path: ProcessTriangle's texel address generation —
// the trilinear footprint per fragment, more than half of a simulation's
// runtime — depends only on the triangle's texture mapping and owned
// segments, never on the cache or bus configuration. A raster artifact
// (internal/core) therefore captures each fragment's 8-address footprint
// once, run-length encoded over consecutive identical footprints, and
// ProcessPrecomputed replays it into any cache/bus configuration with
// byte-identical timing and counters.
//
// Equivalence contract: for the same arrival and the same triangle,
// ProcessPrecomputed performs the same floating-point operations in the same
// order as ProcessTriangle — per-fragment scan increments, miss/stall
// arithmetic and prefetch-ring updates are replicated verbatim. A run's
// repeated fragments re-access a footprint the previous fragment just
// touched; when the cache model guarantees such repeats hit without
// disturbing replacement state (cache.Model.RepeatHits), the replay accounts
// them in bulk and skips the lookups — the fast path that makes replay
// several times cheaper than simulation. Models without the guarantee (the
// cacheless model) replay every repeat as real accesses.
package engine

import (
	"repro/internal/raster"
	"repro/internal/texture"
)

// PrecomputedWork is one triangle's contribution to one node with the texel
// address stream already generated: the replayable counterpart of
// TriangleWork. Addrs holds one 8-address trilinear footprint per run and
// Reps the run's fragment count; runs are in fragment scan order and may
// cross segment boundaries.
type PrecomputedWork struct {
	// Segments are the owned pixel segments, identical to the TriangleWork
	// the distributor would have built (the pure-scan path uses them).
	Segments []raster.Span
	// Addrs is the run-length-encoded footprint stream: 8 addresses per run.
	Addrs []texture.Addr
	// Reps holds each run's fragment count; len(Addrs) == 8*len(Reps) and
	// the Reps sum to the fragment count of Segments.
	Reps []int32
}

// Frags returns the total fragment count of the owned segments.
func (w *PrecomputedWork) Frags() int {
	n := 0
	for _, sp := range w.Segments {
		n += sp.Width()
	}
	return n
}

// ProcessPrecomputed runs one triangle whose footprints were precomputed
// through the pipeline, beginning no earlier than arrival, and returns the
// absolute completion time — ProcessTriangle with the address generation
// replaced by the recorded stream. Byte-identical to ProcessTriangle for a
// work item built from the same triangle on the same scene.
func (e *Engine) ProcessPrecomputed(arrival float64, w *PrecomputedWork) float64 {
	start := e.StartTriangle(arrival)
	stall0 := e.stats.StallCycles
	s := start
	if e.pureScan {
		for _, sp := range w.Segments {
			n := sp.Width()
			s += float64(n)
			e.stats.Fragments += uint64(n)
		}
		return e.finishTriangle(start, stall0, s)
	}
	repeatFast := e.cache.RepeatHits()
	for r := range w.Reps {
		foot := w.Addrs[r*8 : r*8+8 : r*8+8]
		reps := int(w.Reps[r])
		if repeatFast {
			s = e.scanFragment(start, s, foot)
			if reps > 1 {
				// The remaining fragments of the run re-access the footprint
				// the fragment before them just touched: guaranteed hits that
				// leave the cache state untouched, no misses, no stalls. Only
				// the scan clock, the prefetch ring and the counters move.
				e.cache.AddHits(uint64(reps-1) * 8)
				for j := 1; j < reps; j++ {
					s++
					e.ring[e.ringPos] = s
					e.ringPos++
					if e.ringPos == len(e.ring) {
						e.ringPos = 0
					}
				}
				e.stats.Fragments += uint64(reps - 1)
			}
		} else {
			for j := 0; j < reps; j++ {
				s = e.scanFragment(start, s, foot)
			}
		}
	}
	return e.finishTriangle(start, stall0, s)
}

// scanFragment times one fragment with a known footprint: the per-fragment
// access/miss/stall/ring body of ProcessTriangle, verbatim.
func (e *Engine) scanFragment(start, s float64, foot []texture.Addr) float64 {
	s++ // one scan cycle per fragment
	misses, mainMisses := 0, 0
	for _, a := range foot {
		if !e.cache.Access(a) {
			misses++
			if e.l2 != nil && !e.l2.Access(a) {
				mainMisses++
			}
		}
	}
	if misses > 0 {
		issue := e.ring[e.ringPos]
		if issue < start {
			issue = start
		}
		ready := e.bus.Fetch(issue, misses)
		if mainMisses > 0 {
			if mainReady := e.mainBus.Fetch(issue, mainMisses); mainReady > ready {
				ready = mainReady
			}
		}
		if ready > s {
			e.stats.StallCycles += ready - s
			s = ready
		}
	}
	e.ring[e.ringPos] = s
	e.ringPos++
	if e.ringPos == len(e.ring) {
		e.ringPos = 0
	}
	e.stats.Fragments++
	return s
}

// PureScan reports whether this engine is in the pure-scan regime (perfect
// cache on an infinite bus), where texel addresses are never consulted and a
// spans-only artifact suffices for replay.
func (e *Engine) PureScan() bool { return e.pureScan }

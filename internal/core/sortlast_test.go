package core

import (
	"testing"

	"repro/internal/distrib"
	"repro/internal/scene"
)

func TestSortLastFragmentsMatchSortMiddle(t *testing.T) {
	// Sort-last draws every fragment exactly once (each triangle fully on
	// one node), so totals match the sort-middle machine.
	sc := testScene(61, 80, 128)
	middle, err := Simulate(sc, Config{Procs: 8, TileSize: 16, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []SortLastAssignment{SortLastRoundRobin, SortLastChunked} {
		last, err := SimulateSortLast(sc, Config{Procs: 8, CacheKind: CachePerfect}, a)
		if err != nil {
			t.Fatal(err)
		}
		if last.Fragments != middle.Fragments {
			t.Errorf("%v: sort-last fragments %d != sort-middle %d",
				a, last.Fragments, middle.Fragments)
		}
	}
}

func TestSortLastNoTriangleOverlap(t *testing.T) {
	// Every drawable triangle goes to exactly one node: routed count equals
	// the drawable triangle count, unlike sort-middle's bbox fan-out.
	sc := testScene(67, 100, 128)
	res, err := SimulateSortLast(sc, Config{Procs: 16, CacheKind: CachePerfect},
		SortLastRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrianglesRouted > uint64(len(sc.Triangles)) {
		t.Errorf("sort-last routed %d of %d triangles", res.TrianglesRouted, len(sc.Triangles))
	}
	middle, err := Simulate(sc, Config{Procs: 16, TileSize: 4, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	if middle.TrianglesRouted <= res.TrianglesRouted {
		t.Error("sort-middle with small tiles should route more triangle copies than sort-last")
	}
}

func TestSortLastChunkedBetterLocalityThanSortMiddle(t *testing.T) {
	// The paper's motivation for studying sort-middle locality: in sort-last
	// each object's texture stays on one node, so the aggregate texel
	// traffic should not exceed a fine-tiled sort-middle machine, which
	// splits every surface's cache lines across nodes.
	b, err := scene.ByName("32massive11255", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sc := b.MustBuild()
	const procs = 16
	last, err := SimulateSortLast(sc, Config{Procs: procs, CacheKind: CacheReal},
		SortLastChunked)
	if err != nil {
		t.Fatal(err)
	}
	middleFine, err := Simulate(sc, Config{
		Procs: procs, Distribution: distrib.SLIKind, TileSize: 1, CacheKind: CacheReal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.TexelToFragment() >= middleFine.TexelToFragment() {
		t.Errorf("sort-last chunked ratio %v not below 1-line-SLI sort-middle %v",
			last.TexelToFragment(), middleFine.TexelToFragment())
	}
}

func TestSortLastChunkedBeatsRoundRobinLocality(t *testing.T) {
	// Chunked assignment keeps mesh patches (and their texture regions)
	// together; round-robin scatters them, so chunked must fetch fewer
	// texels.
	b, err := scene.ByName("quake", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sc := b.MustBuild()
	cfg := Config{Procs: 16, CacheKind: CacheReal}
	chunked, err := SimulateSortLast(sc, cfg, SortLastChunked)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SimulateSortLast(sc, cfg, SortLastRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if chunked.TexelToFragment() >= rr.TexelToFragment() {
		t.Errorf("chunked ratio %v not below round-robin %v",
			chunked.TexelToFragment(), rr.TexelToFragment())
	}
}

func TestSortLastDeterministic(t *testing.T) {
	sc := testScene(71, 60, 128)
	cfg := Config{Procs: 4, CacheKind: CacheReal}
	a, err := SimulateSortLast(sc, cfg, SortLastChunked)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSortLast(sc, cfg, SortLastChunked)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Fragments != b.Fragments {
		t.Error("sort-last not deterministic")
	}
}

func TestSortLastAssignmentString(t *testing.T) {
	if SortLastRoundRobin.String() != "round-robin" || SortLastChunked.String() != "chunked" {
		t.Error("assignment names wrong")
	}
}

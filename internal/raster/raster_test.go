package raster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

var screen = geom.Rect{X0: 0, Y0: 0, X1: 64, Y1: 64}

func tri(x0, y0, x1, y1, x2, y2 float64) geom.Triangle {
	return geom.Triangle{V: [3]geom.Vec2{{X: x0, Y: y0}, {X: x1, Y: y1}, {X: x2, Y: y2}}}
}

func TestAxisAlignedRightTriangle(t *testing.T) {
	r := New(screen)
	// Right triangle covering the lower-left half of a 10x10 square.
	tr := tri(0, 0, 0, 10, 10, 10)
	got := r.PixelCount(tr, screen)
	// A half-square of area 50 should cover ~50 pixels; the diagonal pixels
	// are split by the fill rule. Analytically the count is exactly 45 or 55
	// depending on which side owns the diagonal; accept the analytic band.
	if got < 40 || got > 60 {
		t.Errorf("pixel count = %d, want ≈50", got)
	}
}

func TestFullSquareFromTwoTriangles(t *testing.T) {
	// Two triangles forming an exact square must tile it: every pixel covered
	// exactly once, total exactly the square area.
	r := New(screen)
	a := tri(4, 4, 20, 4, 4, 20)
	b := tri(20, 4, 20, 20, 4, 20)
	ca := r.CoverageMask(a, screen)
	cb := r.CoverageMask(b, screen)
	for p := range ca {
		if cb[p] {
			t.Fatalf("pixel %v drawn by both triangles sharing an edge", p)
		}
	}
	total := len(ca) + len(cb)
	if total != 16*16 {
		t.Errorf("two-triangle square covers %d pixels, want 256", total)
	}
	// Verify every pixel of the square is covered by one of them.
	for y := 4; y < 20; y++ {
		for x := 4; x < 20; x++ {
			p := [2]int{x, y}
			if !ca[p] && !cb[p] {
				t.Fatalf("pixel %v uncovered", p)
			}
		}
	}
}

func TestSharedEdgeNeverDoubleDrawn(t *testing.T) {
	// Fans of random triangles around a shared edge: property holds for any
	// pair sharing an edge with opposite winding.
	rng := rand.New(rand.NewSource(7))
	r := New(screen)
	for trial := 0; trial < 200; trial++ {
		p0 := geom.Vec2{X: rng.Float64() * 60, Y: rng.Float64() * 60}
		p1 := geom.Vec2{X: rng.Float64() * 60, Y: rng.Float64() * 60}
		a := geom.Vec2{X: rng.Float64() * 60, Y: rng.Float64() * 60}
		b := geom.Vec2{X: rng.Float64() * 60, Y: rng.Float64() * 60}
		// a and b must be on opposite sides of edge p0-p1.
		e := p1.Sub(p0)
		if e.Cross(a.Sub(p0))*e.Cross(b.Sub(p0)) >= 0 {
			continue
		}
		ta := geom.Triangle{V: [3]geom.Vec2{p0, p1, a}}
		tb := geom.Triangle{V: [3]geom.Vec2{p1, p0, b}}
		ma := r.CoverageMask(ta, screen)
		mb := r.CoverageMask(tb, screen)
		for p := range ma {
			if mb[p] {
				t.Fatalf("trial %d: pixel %v double-drawn across shared edge", trial, p)
			}
		}
	}
}

func TestDegenerateTriangles(t *testing.T) {
	r := New(screen)
	cases := []geom.Triangle{
		tri(5, 5, 5, 5, 5, 5),   // point
		tri(0, 0, 10, 10, 5, 5), // collinear
		tri(1, 1, 1, 1, 30, 40), // repeated vertex
	}
	for i, tr := range cases {
		if got := r.PixelCount(tr, screen); got != 0 {
			t.Errorf("degenerate case %d drew %d pixels", i, got)
		}
	}
}

func TestClippingToRegion(t *testing.T) {
	r := New(screen)
	tr := tri(0, 0, 40, 0, 0, 40)
	full := r.CoverageMask(tr, screen)
	clip := geom.Rect{X0: 10, Y0: 10, X1: 20, Y1: 20}
	clipped := r.CoverageMask(tr, clip)
	for p := range clipped {
		if !clip.Contains(p[0], p[1]) {
			t.Fatalf("clipped output pixel %v outside clip", p)
		}
		if !full[p] {
			t.Fatalf("clipped output pixel %v not in full rasterization", p)
		}
	}
	// Every full-raster pixel inside the clip must appear in the clipped set.
	for p := range full {
		if clip.Contains(p[0], p[1]) && !clipped[p] {
			t.Fatalf("pixel %v lost by clipping", p)
		}
	}
}

func TestClipUnionProperty(t *testing.T) {
	// Partitioning the screen into four quadrant clips and rasterizing into
	// each must reproduce the unclipped coverage exactly.
	f := func(coords [6]uint8) bool {
		tr := tri(
			float64(coords[0]%64), float64(coords[1]%64),
			float64(coords[2]%64), float64(coords[3]%64),
			float64(coords[4]%64), float64(coords[5]%64),
		)
		r := New(screen)
		full := r.CoverageMask(tr, screen)
		quads := []geom.Rect{
			{X0: 0, Y0: 0, X1: 32, Y1: 32},
			{X0: 32, Y0: 0, X1: 64, Y1: 32},
			{X0: 0, Y0: 32, X1: 32, Y1: 64},
			{X0: 32, Y0: 32, X1: 64, Y1: 64},
		}
		union := make(map[[2]int]bool)
		for _, q := range quads {
			for p := range r.CoverageMask(tr, q) {
				if union[p] {
					return false // quadrants overlap: impossible
				}
				union[p] = true
			}
		}
		if len(union) != len(full) {
			return false
		}
		for p := range full {
			if !union[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPixelCountApproximatesArea(t *testing.T) {
	// For large random triangles the pixel count must converge to the area.
	rng := rand.New(rand.NewSource(11))
	big := geom.Rect{X0: 0, Y0: 0, X1: 1024, Y1: 1024}
	r := New(big)
	for trial := 0; trial < 30; trial++ {
		tr := geom.Triangle{V: [3]geom.Vec2{
			{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		}}
		area := tr.Area()
		if area < 5000 {
			continue
		}
		got := float64(r.PixelCount(tr, big))
		// Perimeter-order error bound.
		perim := tr.V[0].Sub(tr.V[1]).Len() + tr.V[1].Sub(tr.V[2]).Len() + tr.V[2].Sub(tr.V[0]).Len()
		if math.Abs(got-area) > perim+16 {
			t.Errorf("trial %d: count %f vs area %f (perim %f)", trial, got, area, perim)
		}
	}
}

func TestSpansInScanOrder(t *testing.T) {
	r := New(screen)
	tr := tri(2, 2, 50, 10, 10, 55)
	lastY := -1
	r.ForEachSpan(tr, screen, func(s Span) {
		if s.Y <= lastY {
			t.Fatalf("span rows out of order: %d after %d", s.Y, lastY)
		}
		if s.X0 >= s.X1 {
			t.Fatalf("empty span emitted at row %d", s.Y)
		}
		lastY = s.Y
	})
}

func TestCoverageInsideTriangle(t *testing.T) {
	// Every reported pixel center must be inside (or on the boundary of) the
	// triangle; every clearly-interior center must be reported.
	rng := rand.New(rand.NewSource(3))
	r := New(screen)
	for trial := 0; trial < 100; trial++ {
		tr := geom.Triangle{V: [3]geom.Vec2{
			{X: rng.Float64() * 60, Y: rng.Float64() * 60},
			{X: rng.Float64() * 60, Y: rng.Float64() * 60},
			{X: rng.Float64() * 60, Y: rng.Float64() * 60},
		}}
		if tr.Area() < 4 {
			continue
		}
		mask := r.CoverageMask(tr, screen)
		bb := tr.BBox().Intersect(screen)
		for y := bb.Y0; y < bb.Y1; y++ {
			for x := bb.X0; x < bb.X1; x++ {
				d := signedDistToTri(tr, float64(x)+0.5, float64(y)+0.5)
				covered := mask[[2]int{x, y}]
				if d > 0.01 && !covered {
					t.Fatalf("trial %d: interior pixel (%d,%d) d=%f not covered", trial, x, y, d)
				}
				if d < -0.01 && covered {
					t.Fatalf("trial %d: exterior pixel (%d,%d) d=%f covered", trial, x, y, d)
				}
			}
		}
	}
}

// signedDistToTri returns a conservative inside(+)/outside(-) measure: the
// minimum over edges of the point's signed distance to the edge line.
func signedDistToTri(t geom.Triangle, x, y float64) float64 {
	v := t.V
	if t.SignedArea() < 0 {
		v[1], v[2] = v[2], v[1]
	}
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		p, q := v[i], v[(i+1)%3]
		e := q.Sub(p)
		n := e.Len()
		if n == 0 {
			return -1
		}
		d := e.Cross(geom.Vec2{X: x, Y: y}.Sub(p)) / n
		if d < best {
			best = d
		}
	}
	return best
}

func BenchmarkRasterizeLargeTriangle(b *testing.B) {
	big := geom.Rect{X0: 0, Y0: 0, X1: 2048, Y1: 2048}
	r := New(big)
	tr := tri(10, 10, 2000, 50, 500, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		r.ForEachSpan(tr, big, func(s Span) { n += s.Width() })
		if n == 0 {
			b.Fatal("no pixels")
		}
	}
}

func TestAppendSpansMatchesForEachSpan(t *testing.T) {
	r := New(screen)
	tri := geom.Triangle{V: [3]geom.Vec2{{X: 3.2, Y: 1.1}, {X: 60.7, Y: 20.4}, {X: 12.5, Y: 55.9}}}
	var want []Span
	r.ForEachSpan(tri, screen, func(s Span) { want = append(want, s) })
	got := r.AppendSpans(tri, screen, nil)
	if len(got) != len(want) {
		t.Fatalf("AppendSpans returned %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAppendSpansReuseAllocFree(t *testing.T) {
	// Rasterizing into a reused buffer must stop allocating once the buffer
	// has grown to the working-set size — the simulator's per-triangle hot
	// path depends on it.
	r := New(screen)
	tri := geom.Triangle{V: [3]geom.Vec2{{X: 1, Y: 1}, {X: 62, Y: 3}, {X: 30, Y: 60}}}
	buf := r.AppendSpans(tri, screen, nil)
	if n := testing.AllocsPerRun(100, func() {
		buf = r.AppendSpans(tri, screen, buf[:0])
	}); n != 0 {
		t.Errorf("AppendSpans with a warm buffer allocates %.1f per call", n)
	}
}

// Package gl is a minimal immediate-mode command stream in the style of the
// OpenGL 1.x API the paper targets. The paper's traces were captured by
// instrumenting Mesa underneath applications that issue Begin/End primitive
// batches with per-vertex texture coordinates, in strict submission order;
// this package is that capture layer: applications (or scene generators)
// draw through it and the recorder emits the trace.Scene the simulator
// consumes, preserving submission order exactly.
//
// Only what the texture-mapping study needs is implemented: triangles,
// triangle strips, triangle fans and quads, one active 2-D texture, and
// unnormalized texel coordinates. Transformation, lighting and clipping
// happen upstream (the paper's geometry stage is ideal), so vertices are in
// screen space already.
package gl

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/trace"
)

// Primitive selects the Begin/End assembly mode.
type Primitive int

const (
	// Triangles assembles every three vertices into one triangle.
	Triangles Primitive = iota
	// TriangleStrip assembles vertices v0 v1 v2, v1 v3 v2 (wound
	// consistently), v2 v3 v4, ...
	TriangleStrip
	// TriangleFan assembles v0 v1 v2, v0 v2 v3, ...
	TriangleFan
	// Quads assembles every four vertices into two triangles.
	Quads
)

// String names the primitive mode.
func (p Primitive) String() string {
	switch p {
	case Triangles:
		return "GL_TRIANGLES"
	case TriangleStrip:
		return "GL_TRIANGLE_STRIP"
	case TriangleFan:
		return "GL_TRIANGLE_FAN"
	case Quads:
		return "GL_QUADS"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// vertex is one submitted vertex: screen position and texel coordinates.
type vertex struct {
	pos geom.Vec2
	tex geom.Vec2
}

// Context records an immediate-mode command stream into a trace.Scene.
// Errors are sticky: the first misuse (Begin inside Begin, vertex outside
// Begin, unbound texture, non-affine texture mapping) is reported by Scene
// and further commands are ignored, mirroring how GL records GL_INVALID_*.
type Context struct {
	scene    *trace.Scene
	err      error
	inBegin  bool
	mode     Primitive
	verts    []vertex
	texBound int32
	texSet   bool
	curTex   geom.Vec2
}

// NewContext opens a recording context for the given screen.
func NewContext(name string, screen geom.Rect) *Context {
	return &Context{
		scene:    &trace.Scene{Name: name, Screen: screen},
		texBound: -1,
	}
}

// GenTexture registers a texture of the given power-of-two size and returns
// its name (index).
func (c *Context) GenTexture(w, h int) int32 {
	if c.err != nil {
		return -1
	}
	if w <= 0 || h <= 0 || w&(w-1) != 0 || h&(h-1) != 0 {
		c.fail("GenTexture: dimensions %dx%d not powers of two", w, h)
		return -1
	}
	c.scene.Textures = append(c.scene.Textures, trace.TexSize{W: w, H: h})
	return int32(len(c.scene.Textures) - 1)
}

// BindTexture selects the texture sampled by subsequent primitives. Binding
// is not allowed inside Begin/End, as in GL.
func (c *Context) BindTexture(id int32) {
	if c.err != nil {
		return
	}
	if c.inBegin {
		c.fail("BindTexture inside Begin/End")
		return
	}
	if id < 0 || int(id) >= len(c.scene.Textures) {
		c.fail("BindTexture: unknown texture %d", id)
		return
	}
	c.texBound = id
}

// Begin opens a primitive batch.
func (c *Context) Begin(mode Primitive) {
	if c.err != nil {
		return
	}
	if c.inBegin {
		c.fail("Begin inside Begin/End")
		return
	}
	if mode < Triangles || mode > Quads {
		c.fail("Begin: invalid mode %d", int(mode))
		return
	}
	if c.texBound < 0 {
		c.fail("Begin: no texture bound")
		return
	}
	c.inBegin = true
	c.mode = mode
	c.verts = c.verts[:0]
}

// TexCoord2f sets the texel coordinate attached to subsequent vertices
// (unnormalized texels, wrap addressing).
func (c *Context) TexCoord2f(u, v float64) {
	c.curTex = geom.Vec2{X: u, Y: v}
	c.texSet = true
}

// Vertex2f submits a screen-space vertex with the current texture
// coordinate.
func (c *Context) Vertex2f(x, y float64) {
	if c.err != nil {
		return
	}
	if !c.inBegin {
		c.fail("Vertex2f outside Begin/End")
		return
	}
	if !c.texSet {
		c.fail("Vertex2f before any TexCoord2f")
		return
	}
	c.verts = append(c.verts, vertex{pos: geom.Vec2{X: x, Y: y}, tex: c.curTex})
}

// End closes the batch, assembling and recording its triangles. Incomplete
// trailing vertices are dropped, as in GL.
func (c *Context) End() {
	if c.err != nil {
		return
	}
	if !c.inBegin {
		c.fail("End outside Begin/End")
		return
	}
	c.inBegin = false
	v := c.verts
	emit := func(a, b, d vertex) {
		if c.err == nil {
			c.emitTriangle(a, b, d)
		}
	}
	switch c.mode {
	case Triangles:
		for i := 0; i+2 < len(v); i += 3 {
			emit(v[i], v[i+1], v[i+2])
		}
	case TriangleStrip:
		for i := 0; i+2 < len(v); i++ {
			if i%2 == 0 {
				emit(v[i], v[i+1], v[i+2])
			} else {
				emit(v[i+1], v[i], v[i+2])
			}
		}
	case TriangleFan:
		for i := 1; i+1 < len(v); i++ {
			emit(v[0], v[i], v[i+1])
		}
	case Quads:
		for i := 0; i+3 < len(v); i += 4 {
			emit(v[i], v[i+1], v[i+2])
			emit(v[i], v[i+2], v[i+3])
		}
	}
}

// emitTriangle solves the affine texture mapping from the three vertices'
// texture coordinates and appends the triangle to the scene.
func (c *Context) emitTriangle(a, b, d vertex) {
	tri := geom.Triangle{V: [3]geom.Vec2{a.pos, b.pos, d.pos}, TexID: c.texBound}
	if tri.Degenerate() {
		return // zero-area triangles rasterize to nothing; GL accepts them
	}
	// Solve u(x,y) = U0 + DuDx·x + DuDy·y through the three vertices (and
	// likewise v). The 2×2 system uses the triangle's edge vectors.
	e1 := b.pos.Sub(a.pos)
	e2 := d.pos.Sub(a.pos)
	det := e1.Cross(e2)
	du1 := b.tex.X - a.tex.X
	du2 := d.tex.X - a.tex.X
	dv1 := b.tex.Y - a.tex.Y
	dv2 := d.tex.Y - a.tex.Y
	m := geom.TexMap{
		DuDx: (du1*e2.Y - du2*e1.Y) / det,
		DuDy: (du2*e1.X - du1*e2.X) / det,
		DvDx: (dv1*e2.Y - dv2*e1.Y) / det,
		DvDy: (dv2*e1.X - dv1*e2.X) / det,
	}
	m.U0 = a.tex.X - m.DuDx*a.pos.X - m.DuDy*a.pos.Y
	m.V0 = a.tex.Y - m.DvDx*a.pos.X - m.DvDy*a.pos.Y
	tri.Tex = m
	c.scene.Triangles = append(c.scene.Triangles, tri)
}

// Err returns the first recording error, if any.
func (c *Context) Err() error { return c.err }

// Scene finalizes the recording and returns the trace, or the first
// recording/validation error.
func (c *Context) Scene() (*trace.Scene, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.inBegin {
		return nil, fmt.Errorf("gl: Scene called inside Begin/End")
	}
	if err := c.scene.Validate(); err != nil {
		return nil, err
	}
	return c.scene, nil
}

func (c *Context) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("gl: "+format, args...)
	}
}
